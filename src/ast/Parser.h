//===- Parser.h - Parser for the C stencil subset ---------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent parser for the restricted C subset accepted as
/// stencil input: nested canonical for loops around assignment statements.
/// The grammar (Fig. 4 of the paper is a model input):
///
/// \code
///   program   := for-stmt
///   for-stmt  := 'for' '(' ['int'] ident '=' expr ';'
///                          ident ('<' | '<=') expr ';'
///                          step ')' stmt
///   step      := ident '++' | '++' ident | ident '+=' number
///              | ident '=' ident '+' number
///   stmt      := for-stmt | assign-stmt | '{' stmt* '}'
///   assign    := array-ref '=' expr ';'
///   expr      := additive with C precedence over + - * / %,
///                unary -, parentheses, calls, array refs
/// \endcode
///
/// Only unit-stride increasing loops are accepted; anything else is
/// rejected with a diagnostic, mirroring the normalization guarantees the
/// paper gets from PPCG's frontend.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_AST_PARSER_H
#define AN5D_AST_PARSER_H

#include "ast/Ast.h"
#include "ast/Lexer.h"
#include "support/Diagnostic.h"

#include <memory>
#include <vector>

namespace an5d {

/// Parses a stencil source buffer into an AST.
class Parser {
public:
  Parser(std::string Source, DiagnosticEngine &Diags);

  /// Parses the whole buffer; expects exactly one top-level for statement.
  /// Returns nullptr (with diagnostics) on error.
  ast::StmtNode parseProgram();

private:
  DiagnosticEngine &Diags;
  std::vector<Token> Tokens;
  std::size_t Index = 0;

  const Token &current() const { return Tokens[Index]; }
  const Token &peekAhead(std::size_t N = 1) const;
  Token consume();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);

  ast::StmtNode parseStmt();
  ast::StmtNode parseForStmt();
  ast::StmtNode parseCompoundStmt();
  ast::StmtNode parseAssignStmt();

  ast::ExprNode parseExpr();
  ast::ExprNode parseAdditive();
  ast::ExprNode parseMultiplicative();
  ast::ExprNode parseUnary();
  ast::ExprNode parsePrimary();
  ast::ExprNode parsePostfix(ast::ExprNode Base);
};

} // namespace an5d

#endif // AN5D_AST_PARSER_H
