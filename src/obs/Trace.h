//===- Trace.h - Hierarchical trace spans (Perfetto-ready) ------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock trace spans for the whole pipeline — one `AN5D_TRACE_SPAN`
/// at the top of a scope records begin/end, the recording thread, and
/// optional key/value attributes into a process-global, lock-striped
/// buffer. The buffer exports as Chrome trace-event JSON (open the file in
/// Perfetto / chrome://tracing: spans nest per thread track by time
/// containment) and as a human-readable aggregated summary table.
///
/// The load-bearing property is the *disabled* cost: tracing defaults to
/// off, and a disabled span is one relaxed atomic load plus a branch — no
/// clock read, no allocation, no lock — so instrumenting the measured
/// tuning hot path (runtime/NativeMeasurement.h) does not perturb the
/// numbers the tuner ranks on (bench_native_runtime's BM_ObsDisabledSpan
/// pins the per-span cost). Attribute values are only worth computing when
/// a span is live; in hot code, guard them:
///
///   obs::TraceSpan Span("tune.candidate");
///   if (Span.active())
///     Span.attr("config", Config.toString());
///
/// The brace form `AN5D_TRACE_SPAN("x", {{"k", v()}})` is fine in cold
/// code but evaluates v() even when tracing is off.
///
/// The clock is injectable (TraceRecorder::setClock) so tests assert
/// byte-deterministic output; the default is steady_clock nanoseconds
/// since the first use in the process.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_OBS_TRACE_H
#define AN5D_OBS_TRACE_H

#include <atomic>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace an5d {
namespace obs {

/// One key/value span attribute ("args" in the Chrome trace format).
struct SpanAttr {
  std::string Key;
  std::string Value;
};

/// One finished span as stored in the recorder.
struct SpanRecord {
  std::string Name;
  long long StartNs = 0;    ///< Clock value at construction.
  long long DurationNs = 0; ///< End minus start (>= 0).
  unsigned ThreadId = 0;    ///< Dense per-process thread id (0, 1, ...).
  std::vector<SpanAttr> Attrs;
};

/// Aggregated statistics for all spans sharing one name.
struct SpanAggregate {
  std::size_t Count = 0;
  long long TotalNs = 0;
  long long MinNs = 0;
  long long MaxNs = 0;
};

/// Monotonic nanosecond clock; injectable for deterministic tests.
using ClockFn = long long (*)();

/// The process-global span sink. Recording is lock-striped by thread id,
/// so concurrent spans from a compile pool contend only within a stripe;
/// export merges and sorts the stripes.
class TraceRecorder {
public:
  static TraceRecorder &global();

  /// The enabled check every span constructor performs. Kept static so
  /// the disabled fast path is a single relaxed atomic load — no
  /// singleton-access function call.
  static bool enabled() { return Enabled.load(std::memory_order_relaxed); }

  void enable() { Enabled.store(true, std::memory_order_relaxed); }
  void disable() { Enabled.store(false, std::memory_order_relaxed); }

  /// Overrides the clock (nullptr restores steady_clock). Set this before
  /// any concurrent recording starts; spans read it on construction.
  void setClock(ClockFn Clock);

  /// Current clock value in nanoseconds.
  long long now() const;

  /// Appends one finished span (called by ~TraceSpan).
  void record(SpanRecord &&Record);

  /// All spans recorded so far, sorted by (thread, start, longest-first) —
  /// the order Chrome trace viewers expect for nesting.
  std::vector<SpanRecord> snapshot() const;

  /// Drops every recorded span (tests; does not change enablement).
  void clear();

  /// Per-name aggregates (count/total/min/max) over the current buffer.
  std::map<std::string, SpanAggregate> aggregate() const;

  /// The Chrome trace-event JSON document ("X" complete events,
  /// microsecond timestamps) — loads directly in Perfetto.
  std::string toChromeTraceJson() const;

  /// Human-readable per-name summary table, widest total first.
  std::string summaryTable() const;

  /// The dense id of the calling thread (assigned on first use).
  static unsigned currentThreadId();

private:
  TraceRecorder() = default;

  static std::atomic<bool> Enabled;

  std::atomic<ClockFn> Clock{nullptr};

  static constexpr std::size_t NumStripes = 16;
  struct Stripe {
    mutable std::mutex Mutex;
    std::vector<SpanRecord> Spans;
  };
  Stripe Stripes[NumStripes];
};

/// RAII span: records itself into TraceRecorder::global() on destruction.
/// When tracing is disabled, construction and destruction are a relaxed
/// atomic load and a branch.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name) {
    if (TraceRecorder::enabled())
      begin(Name);
  }

  TraceSpan(const char *Name, std::initializer_list<SpanAttr> Attrs) {
    if (TraceRecorder::enabled()) {
      begin(Name);
      for (const SpanAttr &Attr : Attrs)
        Attributes.push_back(Attr);
    }
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  ~TraceSpan() {
    if (Active)
      end();
  }

  /// True when this span is live (tracing was enabled at construction).
  bool active() const { return Active; }

  /// Attaches an attribute; no-op on an inactive span, so callers can
  /// compute values under `if (span.active())` only.
  void attr(std::string Key, std::string Value) {
    if (Active)
      Attributes.push_back({std::move(Key), std::move(Value)});
  }

private:
  void begin(const char *SpanName);
  void end();

  bool Active = false;
  const char *Name = nullptr;
  long long StartNs = 0;
  std::vector<SpanAttr> Attributes;
};

#define AN5D_OBS_CONCAT_IMPL(A, B) A##B
#define AN5D_OBS_CONCAT(A, B) AN5D_OBS_CONCAT_IMPL(A, B)

/// Declares an RAII trace span for the rest of the enclosing scope:
///   AN5D_TRACE_SPAN("tune.candidate", {{"config", Config.toString()}});
#define AN5D_TRACE_SPAN(...)                                                 \
  ::an5d::obs::TraceSpan AN5D_OBS_CONCAT(An5dTraceSpan_,                     \
                                         __LINE__)(__VA_ARGS__)

} // namespace obs
} // namespace an5d

#endif // AN5D_OBS_TRACE_H
