//===- Metrics.h - Process-global counters, gauges, histograms --*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One MetricsRegistry for the whole process, unifying the stats that used
/// to live in disconnected structs (KernelCacheStats, TuneOutcome,
/// MeasuredResult): kernel-cache hits/misses/evictions, verifier
/// rejections, per-kind measurement failures, measurement repeats/clamps,
/// sweep queue occupancy, compile-time histograms. Producers bump named
/// instruments; consumers (an5dc --metrics / --obs-summary, the metrics
/// exactness tests, tools/obs_guard) read one coherent snapshot.
///
/// Instruments are cheap enough to leave unconditionally on in the cold
/// paths that use them — a counter add is one relaxed atomic RMW; only
/// instrument lookup by name takes the registry mutex, so hot code
/// resolves its instrument once (or stays behind the tracing-enabled
/// check, see obs/Trace.h).
///
/// Metric names are dotted lowercase (`kernel_cache.hits`). The canonical
/// glossary lives in knownMetricNames(): tools/obs_guard fails when an
/// export contains a name outside it, so producers cannot silently drift
/// from the documented set (README "Observability" mirrors the list).
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_OBS_METRICS_H
#define AN5D_OBS_METRICS_H

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace an5d {
namespace obs {

class TraceRecorder;

/// Monotonic event count.
class Counter {
public:
  void add(long long Delta = 1) {
    Value_.fetch_add(Delta, std::memory_order_relaxed);
  }
  long long value() const { return Value_.load(std::memory_order_relaxed); }
  void reset() { Value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<long long> Value_{0};
};

/// Last-write-wins instantaneous value (queue depths, pool sizes).
class Gauge {
public:
  void set(long long Value) {
    Value_.store(Value, std::memory_order_relaxed);
  }
  long long value() const { return Value_.load(std::memory_order_relaxed); }
  void reset() { Value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<long long> Value_{0};
};

/// Fixed-bucket histogram of double observations. Bucket I counts
/// observations <= Bounds[I]; one overflow bucket catches the rest.
class Histogram {
public:
  explicit Histogram(std::vector<double> Bounds);

  void observe(double Value);

  const std::vector<double> &bounds() const { return Bounds; }
  /// Cumulative count for bucket \p I (<= bounds()[I]); I == size() is
  /// the overflow bucket.
  long long bucketCount(std::size_t I) const;
  long long count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const;
  void reset();

private:
  std::vector<double> Bounds;
  std::vector<std::atomic<long long>> Buckets; ///< Bounds.size() + 1
  std::atomic<long long> Count{0};
  std::atomic<long long> SumBits{0}; ///< bit-cast double, CAS-updated
};

/// The process-global named-instrument registry. Lookup creates on first
/// use and returns a stable reference (instruments are never removed), so
/// call sites may cache the reference.
class MetricsRegistry {
public:
  static MetricsRegistry &global();

  MetricsRegistry() = default;

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  /// \p Bounds applies on first creation only (must be sorted ascending).
  Histogram &histogram(const std::string &Name,
                       const std::vector<double> &Bounds);

  /// Snapshot value of a counter/gauge (0 when never registered) — for
  /// tests and the an5dc summary, without creating the instrument.
  long long counterValue(const std::string &Name) const;
  long long gaugeValue(const std::string &Name) const;

  /// Every registered instrument name, sorted.
  std::vector<std::string> registeredNames() const;

  /// Zeroes every instrument (registrations survive). Tests only.
  void reset();

  /// The metrics export: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} plus, when \p Spans is non-null, a "spans"
  /// object with per-name {count,total_ms,mean_ms,min_ms,max_ms}
  /// aggregates — the tuner phase-time breakdown BENCH_obs.json tracks.
  std::string toJson(const TraceRecorder *Spans = nullptr) const;

  /// Human-readable table of every non-zero instrument.
  std::string summaryTable() const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// The canonical metric-name glossary. tools/obs_guard rejects exported
/// names outside this list; extend it (and the README glossary) when
/// adding an instrument.
const std::vector<std::string> &knownMetricNames();

//===----------------------------------------------------------------------===//
// Call-site conveniences over the global registry.
//===----------------------------------------------------------------------===//

inline void count(const std::string &Name, long long Delta = 1) {
  MetricsRegistry::global().counter(Name).add(Delta);
}

inline void gaugeSet(const std::string &Name, long long Value) {
  MetricsRegistry::global().gauge(Name).set(Value);
}

inline void observe(const std::string &Name, double Value,
                    const std::vector<double> &Bounds) {
  MetricsRegistry::global().histogram(Name, Bounds).observe(Value);
}

/// Shared bucket menus, so one metric keeps one shape everywhere.
const std::vector<double> &compileSecondsBuckets();
const std::vector<double> &runSecondsBuckets();

} // namespace obs
} // namespace an5d

#endif // AN5D_OBS_METRICS_H
