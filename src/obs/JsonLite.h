//===- JsonLite.h - Minimal JSON parse/escape for telemetry export -*-C++-*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON value model with a recursive-descent parser
/// and a string-escape writer, shared by the observability exporters
/// (obs/Trace.h, obs/Metrics.h), the trace-schema guard (tools/obs_guard)
/// and the ObsTest parse-back assertions. It exists so the telemetry the
/// framework emits can be *validated by the framework itself* — no
/// external JSON dependency, no drift between writer and checker.
///
/// Scope: RFC 8259 minus extras the exporters never produce — numbers
/// parse through strtod (so exponents work), \uXXXX escapes decode basic
/// multilingual plane code points to UTF-8, objects keep member order.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_OBS_JSONLITE_H
#define AN5D_OBS_JSONLITE_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace an5d {
namespace obs {

/// One parsed JSON value (a tagged union over the seven JSON kinds,
/// with objects as ordered member lists).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;

  bool Bool = false;
  double Number = 0;
  std::string String;
  std::vector<JsonValue> Items;                                ///< arrays
  std::vector<std::pair<std::string, JsonValue>> Members;      ///< objects

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// First member named \p Key (objects only); null when absent.
  const JsonValue *find(const std::string &Key) const;
};

/// Parses \p Text as one JSON document (trailing garbage is an error).
/// On failure returns nullopt and, when \p Error is non-null, a
/// line/column diagnostic.
std::optional<JsonValue> parseJson(const std::string &Text,
                                   std::string *Error = nullptr);

/// Appends \p Text to \p Out as a quoted JSON string (escapes quotes,
/// backslashes and control characters).
void appendJsonString(std::string &Out, const std::string &Text);

} // namespace obs
} // namespace an5d

#endif // AN5D_OBS_JSONLITE_H
