//===- Metrics.cpp - Process-global counters, gauges, histograms -------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/JsonLite.h"
#include "obs/Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace an5d {
namespace obs {

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> BucketBounds)
    : Bounds(std::move(BucketBounds)),
      Buckets(Bounds.size() + 1) {
  for (std::atomic<long long> &Bucket : Buckets)
    Bucket.store(0, std::memory_order_relaxed);
}

namespace {

long long doubleToBits(double Value) {
  long long Bits;
  static_assert(sizeof(Bits) == sizeof(Value), "bit-cast size mismatch");
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Bits;
}

double bitsToDouble(long long Bits) {
  double Value;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return Value;
}

} // namespace

void Histogram::observe(double Value) {
  std::size_t Bucket = 0;
  while (Bucket < Bounds.size() && Value > Bounds[Bucket])
    ++Bucket;
  Buckets[Bucket].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  // C++17 has no atomic<double>::fetch_add: CAS on the bit pattern.
  long long Expected = SumBits.load(std::memory_order_relaxed);
  while (!SumBits.compare_exchange_weak(
      Expected, doubleToBits(bitsToDouble(Expected) + Value),
      std::memory_order_relaxed))
    ;
}

long long Histogram::bucketCount(std::size_t I) const {
  return I < Buckets.size() ? Buckets[I].load(std::memory_order_relaxed) : 0;
}

double Histogram::sum() const {
  return bitsToDouble(SumBits.load(std::memory_order_relaxed));
}

void Histogram::reset() {
  for (std::atomic<long long> &Bucket : Buckets)
    Bucket.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  SumBits.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Instance;
  return Instance;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      const std::vector<double> &Bounds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>(Bounds);
  return *Slot;
}

long long MetricsRegistry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second->value();
}

long long MetricsRegistry::gaugeValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0 : It->second->value();
}

std::vector<std::string> MetricsRegistry::registeredNames() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::string> Names;
  for (const auto &Entry : Counters)
    Names.push_back(Entry.first);
  for (const auto &Entry : Gauges)
    Names.push_back(Entry.first);
  for (const auto &Entry : Histograms)
    Names.push_back(Entry.first);
  std::sort(Names.begin(), Names.end());
  return Names;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &Entry : Counters)
    Entry.second->reset();
  for (auto &Entry : Gauges)
    Entry.second->reset();
  for (auto &Entry : Histograms)
    Entry.second->reset();
}

std::string MetricsRegistry::toJson(const TraceRecorder *Spans) const {
  char Buffer[96];
  std::string Out = "{\n\"counters\":{";
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    bool First = true;
    for (const auto &Entry : Counters) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\n";
      appendJsonString(Out, Entry.first);
      std::snprintf(Buffer, sizeof(Buffer), ":%lld",
                    Entry.second->value());
      Out += Buffer;
    }
    Out += "\n},\n\"gauges\":{";
    First = true;
    for (const auto &Entry : Gauges) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\n";
      appendJsonString(Out, Entry.first);
      std::snprintf(Buffer, sizeof(Buffer), ":%lld",
                    Entry.second->value());
      Out += Buffer;
    }
    Out += "\n},\n\"histograms\":{";
    First = true;
    for (const auto &Entry : Histograms) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\n";
      appendJsonString(Out, Entry.first);
      const Histogram &H = *Entry.second;
      std::snprintf(Buffer, sizeof(Buffer), ":{\"count\":%lld,\"sum\":%.9g",
                    H.count(), H.sum());
      Out += Buffer;
      Out += ",\"buckets\":[";
      for (std::size_t I = 0; I <= H.bounds().size(); ++I) {
        if (I > 0)
          Out += ",";
        if (I < H.bounds().size())
          std::snprintf(Buffer, sizeof(Buffer),
                        "{\"le\":%.9g,\"count\":%lld}", H.bounds()[I],
                        H.bucketCount(I));
        else
          std::snprintf(Buffer, sizeof(Buffer),
                        "{\"le\":\"+inf\",\"count\":%lld}",
                        H.bucketCount(I));
        Out += Buffer;
      }
      Out += "]}";
    }
    Out += "\n}";
  }

  if (Spans) {
    Out += ",\n\"spans\":{";
    bool First = true;
    for (const auto &Entry : Spans->aggregate()) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\n";
      appendJsonString(Out, Entry.first);
      const SpanAggregate &Agg = Entry.second;
      std::snprintf(Buffer, sizeof(Buffer),
                    ":{\"count\":%zu,\"total_ms\":%.3f,\"mean_ms\":%.3f",
                    Agg.Count, static_cast<double>(Agg.TotalNs) / 1e6,
                    static_cast<double>(Agg.TotalNs) / 1e6 /
                        static_cast<double>(Agg.Count));
      Out += Buffer;
      std::snprintf(Buffer, sizeof(Buffer),
                    ",\"min_ms\":%.3f,\"max_ms\":%.3f}",
                    static_cast<double>(Agg.MinNs) / 1e6,
                    static_cast<double>(Agg.MaxNs) / 1e6);
      Out += Buffer;
    }
    Out += "\n}";
  }
  Out += "\n}\n";
  return Out;
}

std::string MetricsRegistry::summaryTable() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::size_t NameWidth = 6;
  for (const auto &Entry : Counters)
    if (Entry.second->value() != 0)
      NameWidth = std::max(NameWidth, Entry.first.size());
  for (const auto &Entry : Gauges)
    if (Entry.second->value() != 0)
      NameWidth = std::max(NameWidth, Entry.first.size());
  for (const auto &Entry : Histograms)
    if (Entry.second->count() != 0)
      NameWidth = std::max(NameWidth, Entry.first.size());

  char Line[256];
  std::string Out;
  for (const auto &Entry : Counters) {
    if (Entry.second->value() == 0)
      continue;
    std::snprintf(Line, sizeof(Line), "%-*s %12lld\n",
                  static_cast<int>(NameWidth), Entry.first.c_str(),
                  Entry.second->value());
    Out += Line;
  }
  for (const auto &Entry : Gauges) {
    if (Entry.second->value() == 0)
      continue;
    std::snprintf(Line, sizeof(Line), "%-*s %12lld (gauge)\n",
                  static_cast<int>(NameWidth), Entry.first.c_str(),
                  Entry.second->value());
    Out += Line;
  }
  for (const auto &Entry : Histograms) {
    if (Entry.second->count() == 0)
      continue;
    std::snprintf(Line, sizeof(Line),
                  "%-*s %12lld observations, sum %.3f\n",
                  static_cast<int>(NameWidth), Entry.first.c_str(),
                  Entry.second->count(), Entry.second->sum());
    Out += Line;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Glossary and shared bucket menus
//===----------------------------------------------------------------------===//

const std::vector<std::string> &knownMetricNames() {
  // Keep sorted; tools/obs_guard fails any export using a name outside
  // this list, and the README "Observability" glossary mirrors it.
  static const std::vector<std::string> Names = {
      "analysis.findings",            // findings emitted by analysis passes
      "analysis.pass_runs",           // analysis pass executions
      "kernel_cache.compile_seconds", // histogram: successful JIT builds
      "kernel_cache.evictions",       // LRU size-cap removals
      "kernel_cache.failures",        // failed kernel builds
      "kernel_cache.hits",            // artifact served without compiling
      "kernel_cache.misses",          // artifact compiled on demand
      "measure.clamps",               // timings raised to the 100ns floor
      "measure.failures.build_failed",      // kernel generation/compile/load
      "measure.failures.never_built",       // compile stage never produced it
      "measure.failures.run_rejected",      // an5d_run returned non-zero
      "measure.failures.verifier_rejected", // static schedule proof refused
      "measure.repeats",              // timed kernel repetitions
      "measure.run_seconds",          // histogram: timed kernel runs
      "measure.warmups",              // untimed warmup runs
      "native.runs",                  // traced an5d_run invocations
      "sweep.candidates",             // measured-sweep items dispatched
      "sweep.queue_depth",            // gauge: compile items still queued
      "tuner.analysis_rejections",    // candidates the pass pipeline refused
      "tuner.candidates_ranked",      // model-ranked candidates per tune
      "tuner.tunes",                  // tuning flows started
      "tuner.verifier_rejections",    // candidates the tuner's gate refused
      "verifier.checks",              // schedule verifications performed
      "verifier.rejections",          // verifications with violations
  };
  return Names;
}

const std::vector<double> &compileSecondsBuckets() {
  static const std::vector<double> Bounds = {0.1, 0.25, 0.5, 1, 2,
                                             5,   10,   30};
  return Bounds;
}

const std::vector<double> &runSecondsBuckets() {
  static const std::vector<double> Bounds = {1e-4, 1e-3, 1e-2, 0.1,
                                             0.5,  1,    5};
  return Bounds;
}

} // namespace obs
} // namespace an5d
