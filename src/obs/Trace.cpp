//===- Trace.cpp - Hierarchical trace spans (Perfetto-ready) -----------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/JsonLite.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace an5d {
namespace obs {

std::atomic<bool> TraceRecorder::Enabled{false};

TraceRecorder &TraceRecorder::global() {
  static TraceRecorder Instance;
  return Instance;
}

namespace {

/// steady_clock nanoseconds since the first call in this process — small
/// positive timestamps, so microsecond conversion in the export never
/// loses precision to a huge epoch offset.
long long steadyNowNs() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

} // namespace

void TraceRecorder::setClock(ClockFn NewClock) {
  Clock.store(NewClock, std::memory_order_relaxed);
}

long long TraceRecorder::now() const {
  ClockFn Fn = Clock.load(std::memory_order_relaxed);
  return Fn ? Fn() : steadyNowNs();
}

unsigned TraceRecorder::currentThreadId() {
  static std::atomic<unsigned> NextId{0};
  thread_local unsigned Id = NextId.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

void TraceRecorder::record(SpanRecord &&Record) {
  Stripe &S = Stripes[Record.ThreadId % NumStripes];
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Spans.push_back(std::move(Record));
}

std::vector<SpanRecord> TraceRecorder::snapshot() const {
  std::vector<SpanRecord> All;
  for (const Stripe &S : Stripes) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    All.insert(All.end(), S.Spans.begin(), S.Spans.end());
  }
  // Per-thread tracks, outermost span before its children: spans are
  // recorded at *end* time, so a parent lands after its children in the
  // stripe; sorting by start (longest first on ties) restores tree order.
  std::stable_sort(All.begin(), All.end(),
                   [](const SpanRecord &A, const SpanRecord &B) {
                     if (A.ThreadId != B.ThreadId)
                       return A.ThreadId < B.ThreadId;
                     if (A.StartNs != B.StartNs)
                       return A.StartNs < B.StartNs;
                     return A.DurationNs > B.DurationNs;
                   });
  return All;
}

void TraceRecorder::clear() {
  for (Stripe &S : Stripes) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Spans.clear();
  }
}

std::map<std::string, SpanAggregate> TraceRecorder::aggregate() const {
  std::map<std::string, SpanAggregate> Aggregates;
  for (const SpanRecord &Span : snapshot()) {
    SpanAggregate &Agg = Aggregates[Span.Name];
    if (Agg.Count == 0) {
      Agg.MinNs = Span.DurationNs;
      Agg.MaxNs = Span.DurationNs;
    } else {
      Agg.MinNs = std::min(Agg.MinNs, Span.DurationNs);
      Agg.MaxNs = std::max(Agg.MaxNs, Span.DurationNs);
    }
    ++Agg.Count;
    Agg.TotalNs += Span.DurationNs;
  }
  return Aggregates;
}

std::string TraceRecorder::toChromeTraceJson() const {
  // Chrome trace-event format, "X" (complete) events: nesting is implied
  // by timestamp containment within one (pid, tid) track, which is
  // exactly how the spans were recorded. ts/dur are microseconds.
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  char Buffer[64];
  for (const SpanRecord &Span : snapshot()) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n{\"name\":";
    appendJsonString(Out, Span.Name);
    Out += ",\"cat\":\"an5d\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(Buffer, sizeof(Buffer), "%u", Span.ThreadId);
    Out += Buffer;
    std::snprintf(Buffer, sizeof(Buffer), ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(Span.StartNs) / 1e3,
                  static_cast<double>(Span.DurationNs) / 1e3);
    Out += Buffer;
    if (!Span.Attrs.empty()) {
      Out += ",\"args\":{";
      bool FirstAttr = true;
      for (const SpanAttr &Attr : Span.Attrs) {
        if (!FirstAttr)
          Out += ",";
        FirstAttr = false;
        appendJsonString(Out, Attr.Key);
        Out += ":";
        appendJsonString(Out, Attr.Value);
      }
      Out += "}";
    }
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

std::string TraceRecorder::summaryTable() const {
  std::map<std::string, SpanAggregate> Aggregates = aggregate();

  // Widest first: the span dominating wall clock heads the table.
  std::vector<std::pair<std::string, SpanAggregate>> Rows(
      Aggregates.begin(), Aggregates.end());
  std::stable_sort(Rows.begin(), Rows.end(),
                   [](const auto &A, const auto &B) {
                     return A.second.TotalNs > B.second.TotalNs;
                   });

  std::size_t NameWidth = 4;
  for (const auto &Row : Rows)
    NameWidth = std::max(NameWidth, Row.first.size());

  char Line[256];
  std::string Out;
  std::snprintf(Line, sizeof(Line),
                "%-*s %8s %12s %10s %10s %10s\n",
                static_cast<int>(NameWidth), "span", "count", "total ms",
                "mean ms", "min ms", "max ms");
  Out += Line;
  for (const auto &Row : Rows) {
    const SpanAggregate &Agg = Row.second;
    std::snprintf(Line, sizeof(Line),
                  "%-*s %8zu %12.3f %10.3f %10.3f %10.3f\n",
                  static_cast<int>(NameWidth), Row.first.c_str(), Agg.Count,
                  static_cast<double>(Agg.TotalNs) / 1e6,
                  static_cast<double>(Agg.TotalNs) / 1e6 /
                      static_cast<double>(Agg.Count),
                  static_cast<double>(Agg.MinNs) / 1e6,
                  static_cast<double>(Agg.MaxNs) / 1e6);
    Out += Line;
  }
  return Out;
}

void TraceSpan::begin(const char *SpanName) {
  Active = true;
  Name = SpanName;
  StartNs = TraceRecorder::global().now();
}

void TraceSpan::end() {
  TraceRecorder &Recorder = TraceRecorder::global();
  SpanRecord Record;
  Record.Name = Name;
  Record.StartNs = StartNs;
  Record.DurationNs = std::max(0LL, Recorder.now() - StartNs);
  Record.ThreadId = TraceRecorder::currentThreadId();
  Record.Attrs = std::move(Attributes);
  Recorder.record(std::move(Record));
}

} // namespace obs
} // namespace an5d
