//===- JsonLite.cpp - Minimal JSON parse/escape for telemetry export ---------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/JsonLite.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace an5d {
namespace obs {

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &Member : Members)
    if (Member.first == Key)
      return &Member.second;
  return nullptr;
}

namespace {

/// Recursive-descent parser over a borrowed text buffer. Depth is capped:
/// the exporters nest four levels at most, and a cap turns a corrupt
/// input into a diagnostic instead of a stack overflow.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  std::optional<JsonValue> parse(std::string *Error) {
    std::optional<JsonValue> Value = parseValue(0);
    if (Value) {
      skipWhitespace();
      if (Pos != Text.size())
        Value = fail("trailing characters after the JSON document");
    }
    if (!Value && Error)
      *Error = Message + " at offset " + std::to_string(Pos);
    return Value;
  }

private:
  static constexpr int MaxDepth = 64;

  std::optional<JsonValue> fail(const char *Why) {
    if (Message.empty())
      Message = Why;
    return std::nullopt;
  }

  void skipWhitespace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWhitespace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Word) {
    std::size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  std::optional<JsonValue> parseValue(int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWhitespace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"')
      return parseString();
    if (C == 't' || C == 'f')
      return parseBool();
    if (C == 'n') {
      if (!literal("null"))
        return fail("invalid literal");
      return JsonValue{};
    }
    return parseNumber();
  }

  std::optional<JsonValue> parseBool() {
    JsonValue Value;
    Value.K = JsonValue::Kind::Bool;
    if (literal("true")) {
      Value.Bool = true;
      return Value;
    }
    if (literal("false")) {
      Value.Bool = false;
      return Value;
    }
    return fail("invalid literal");
  }

  std::optional<JsonValue> parseNumber() {
    const char *Start = Text.c_str() + Pos;
    char *End = nullptr;
    double Number = std::strtod(Start, &End);
    if (End == Start)
      return fail("invalid number");
    Pos += static_cast<std::size_t>(End - Start);
    JsonValue Value;
    Value.K = JsonValue::Kind::Number;
    Value.Number = Number;
    return Value;
  }

  /// Decodes one \uXXXX escape into \p Out as UTF-8 (BMP only; surrogate
  /// pairs collapse to U+FFFD — the exporters never emit them).
  bool decodeUnicodeEscape(std::string &Out) {
    if (Pos + 4 > Text.size())
      return false;
    unsigned Code = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos + static_cast<std::size_t>(I)];
      Code <<= 4;
      if (C >= '0' && C <= '9')
        Code |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Code |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Code |= static_cast<unsigned>(C - 'A' + 10);
      else
        return false;
    }
    Pos += 4;
    if (Code >= 0xD800 && Code <= 0xDFFF)
      Code = 0xFFFD;
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
    return true;
  }

  std::optional<JsonValue> parseString() {
    if (!consume('"'))
      return fail("expected '\"'");
    JsonValue Value;
    Value.K = JsonValue::Kind::String;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Value;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Value.String += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char Escape = Text[Pos++];
      switch (Escape) {
      case '"': Value.String += '"'; break;
      case '\\': Value.String += '\\'; break;
      case '/': Value.String += '/'; break;
      case 'b': Value.String += '\b'; break;
      case 'f': Value.String += '\f'; break;
      case 'n': Value.String += '\n'; break;
      case 'r': Value.String += '\r'; break;
      case 't': Value.String += '\t'; break;
      case 'u':
        if (!decodeUnicodeEscape(Value.String))
          return fail("invalid \\u escape");
        break;
      default:
        return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  std::optional<JsonValue> parseArray(int Depth) {
    consume('[');
    JsonValue Value;
    Value.K = JsonValue::Kind::Array;
    if (consume(']'))
      return Value;
    while (true) {
      std::optional<JsonValue> Item = parseValue(Depth + 1);
      if (!Item)
        return std::nullopt;
      Value.Items.push_back(std::move(*Item));
      if (consume(']'))
        return Value;
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
  }

  std::optional<JsonValue> parseObject(int Depth) {
    consume('{');
    JsonValue Value;
    Value.K = JsonValue::Kind::Object;
    if (consume('}'))
      return Value;
    while (true) {
      skipWhitespace();
      std::optional<JsonValue> Key = parseString();
      if (!Key)
        return std::nullopt;
      if (!consume(':'))
        return fail("expected ':' after object key");
      std::optional<JsonValue> Member = parseValue(Depth + 1);
      if (!Member)
        return std::nullopt;
      Value.Members.emplace_back(std::move(Key->String), std::move(*Member));
      if (consume('}'))
        return Value;
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
  }

  const std::string &Text;
  std::size_t Pos = 0;
  std::string Message;
};

} // namespace

std::optional<JsonValue> parseJson(const std::string &Text,
                                   std::string *Error) {
  return Parser(Text).parse(Error);
}

void appendJsonString(std::string &Out, const std::string &Text) {
  Out += '"';
  for (unsigned char C : Text) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\b': Out += "\\b"; break;
    case '\f': Out += "\\f"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (C < 0x20) {
        char Buffer[8];
        std::snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
        Out += Buffer;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

} // namespace obs
} // namespace an5d
