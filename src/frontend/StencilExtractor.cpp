//===- StencilExtractor.cpp - Stencil detection over the AST ---------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/StencilExtractor.h"

#include "analysis/passes/TapeVerifier.h"
#include "ast/Parser.h"
#include "ir/ExprEval.h"

namespace an5d {

using namespace ast;

namespace {

/// Everything the per-node lowering needs to know about the loop nest.
struct NestContext {
  std::string TimeVar;
  std::vector<std::string> SpatialVars; // streaming dimension first
  std::string ArrayName;                // filled in once the store is seen
  DiagnosticEngine *Diags = nullptr;
};

} // namespace

/// Unwraps compound statements that contain exactly one statement; the
/// paper's normalized inputs may or may not use braces.
static const Stmt *unwrapSingleton(const Stmt *S, DiagnosticEngine &Diags) {
  while (const auto *Compound = ast_dyn_cast<CompoundStmt>(S)) {
    if (Compound->stmts().size() != 1) {
      Diags.error(S->loc(),
                  "stencil body must contain exactly one statement "
                  "(Section 4.3.3 rule 1: singleton statement)");
      return nullptr;
    }
    S = Compound->stmts().front().get();
  }
  return S;
}

/// Matches '<var> % 2' or '(<var> + 1) % 2'; returns the additive shift
/// (0 or 1) or std::nullopt when the expression has another form.
static std::optional<int> matchTimeBufferIndex(const Expr &E,
                                               const std::string &TimeVar) {
  const auto *Mod = ast_dyn_cast<BinaryOpExpr>(&E);
  if (!Mod || Mod->op() != BinOp::Mod)
    return std::nullopt;
  const auto *Two = ast_dyn_cast<NumberLit>(&Mod->rhs());
  if (!Two || Two->value() != 2.0)
    return std::nullopt;

  const Expr *Base = &Mod->lhs();
  if (const auto *Ident = ast_dyn_cast<IdentExpr>(Base))
    return Ident->name() == TimeVar ? std::optional<int>(0) : std::nullopt;
  if (const auto *Add = ast_dyn_cast<BinaryOpExpr>(Base)) {
    if (Add->op() != BinOp::Add)
      return std::nullopt;
    const auto *Ident = ast_dyn_cast<IdentExpr>(&Add->lhs());
    const auto *One = ast_dyn_cast<NumberLit>(&Add->rhs());
    if (Ident && One && Ident->name() == TimeVar && One->value() == 1.0)
      return 1;
  }
  return std::nullopt;
}

/// Matches a spatial index of the form '<var>', '<var> + c' or '<var> - c'
/// against the expected loop variable; returns the constant offset.
static std::optional<int> matchSpatialIndex(const Expr &E,
                                            const std::string &Var) {
  if (const auto *Ident = ast_dyn_cast<IdentExpr>(&E))
    return Ident->name() == Var ? std::optional<int>(0) : std::nullopt;
  const auto *Bin = ast_dyn_cast<BinaryOpExpr>(&E);
  if (!Bin || (Bin->op() != BinOp::Add && Bin->op() != BinOp::Sub))
    return std::nullopt;
  const auto *Ident = ast_dyn_cast<IdentExpr>(&Bin->lhs());
  const auto *Num = ast_dyn_cast<NumberLit>(&Bin->rhs());
  if (!Ident || !Num || Ident->name() != Var || !Num->isIntegerLiteral())
    return std::nullopt;
  int Magnitude = static_cast<int>(Num->value());
  return Bin->op() == BinOp::Add ? Magnitude : -Magnitude;
}

/// Lowers an array read A[t%2][i+di][j+dj] to a GridReadExpr, enforcing
/// rule 1 (static addresses) and rule 3 (reads only the t%2 buffer).
static ExprPtr lowerGridRead(const ArrayRefExpr &Ref, NestContext &Ctx) {
  DiagnosticEngine &Diags = *Ctx.Diags;
  if (Ref.base() != Ctx.ArrayName) {
    Diags.error(Ref.loc(), "read of array '" + Ref.base() +
                               "' but the stencil stores to '" +
                               Ctx.ArrayName +
                               "'; only one grid array is supported");
    return nullptr;
  }
  if (Ref.indices().size() != Ctx.SpatialVars.size() + 1) {
    Diags.error(Ref.loc(),
                "grid read arity differs from the loop nest depth "
                "(Section 4.3.3 rule 2: multi-dimensional addressing)");
    return nullptr;
  }
  std::optional<int> TimeShift =
      matchTimeBufferIndex(*Ref.indices()[0], Ctx.TimeVar);
  if (!TimeShift) {
    Diags.error(Ref.loc(),
                "grid read must address the '" + Ctx.TimeVar +
                    " % 2' buffer; non-double-buffered input is rejected");
    return nullptr;
  }
  if (*TimeShift != 0) {
    Diags.error(Ref.loc(),
                "grid read addresses the output buffer ((t+1)%2); spatial "
                "iterations would not be data independent "
                "(Section 4.3.3 rule 3)");
    return nullptr;
  }
  std::vector<int> Offsets;
  for (std::size_t D = 0; D < Ctx.SpatialVars.size(); ++D) {
    std::optional<int> Offset =
        matchSpatialIndex(*Ref.indices()[D + 1], Ctx.SpatialVars[D]);
    if (!Offset) {
      Diags.error(Ref.loc(),
                  "subscript " + std::to_string(D + 1) +
                      " must be '" + Ctx.SpatialVars[D] +
                      " +/- constant' (Section 4.3.3 rule 1: static read "
                      "addresses)");
      return nullptr;
    }
    Offsets.push_back(*Offset);
  }
  return makeGridRead(Ctx.ArrayName, std::move(Offsets));
}

/// Lowers the right-hand side of the update statement into stencil IR.
static ExprPtr lowerExpr(const Expr &E, NestContext &Ctx) {
  DiagnosticEngine &Diags = *Ctx.Diags;
  switch (E.kind()) {
  case Expr::Kind::Number:
    return makeNumber(ast_cast<NumberLit>(E).value());
  case Expr::Kind::Ident: {
    const auto &Ident = ast_cast<IdentExpr>(E);
    if (Ident.name() == Ctx.TimeVar) {
      Diags.error(E.loc(), "time variable may not appear in the update "
                           "value computation");
      return nullptr;
    }
    for (const std::string &Var : Ctx.SpatialVars)
      if (Ident.name() == Var) {
        Diags.error(E.loc(), "loop variable '" + Var +
                                 "' may not appear outside array subscripts "
                                 "(coefficients must be constant)");
        return nullptr;
      }
    // A free identifier is a named compile-time coefficient.
    return makeCoefficient(Ident.name());
  }
  case Expr::Kind::ArrayRef:
    return lowerGridRead(ast_cast<ArrayRefExpr>(E), Ctx);
  case Expr::Kind::Unary: {
    ExprPtr Operand = lowerExpr(ast_cast<UnaryOpExpr>(E).operand(), Ctx);
    return Operand ? makeNeg(std::move(Operand)) : nullptr;
  }
  case Expr::Kind::Binary: {
    const auto &Bin = ast_cast<BinaryOpExpr>(E);
    if (Bin.op() == BinOp::Mod) {
      Diags.error(E.loc(), "'%' is only permitted in double-buffer time "
                           "indices");
      return nullptr;
    }
    ExprPtr LHS = lowerExpr(Bin.lhs(), Ctx);
    ExprPtr RHS = lowerExpr(Bin.rhs(), Ctx);
    if (!LHS || !RHS)
      return nullptr;
    BinaryOpKind Op;
    switch (Bin.op()) {
    case BinOp::Add:
      Op = BinaryOpKind::Add;
      break;
    case BinOp::Sub:
      Op = BinaryOpKind::Sub;
      break;
    case BinOp::Mul:
      Op = BinaryOpKind::Mul;
      break;
    case BinOp::Div:
      Op = BinaryOpKind::Div;
      break;
    default:
      return nullptr;
    }
    return makeBinary(Op, std::move(LHS), std::move(RHS));
  }
  case Expr::Kind::Call: {
    const auto &Call = ast_cast<CallOpExpr>(E);
    if (!isKnownMathCall(Call.callee())) {
      Diags.error(E.loc(),
                  "unknown function '" + Call.callee() +
                      "'; only math builtins (sqrt, fabs, exp, log, sin, "
                      "cos) are allowed");
      return nullptr;
    }
    if (Call.args().size() != 1) {
      Diags.error(E.loc(), "math builtins take exactly one argument");
      return nullptr;
    }
    ExprPtr Arg = lowerExpr(*Call.args()[0], Ctx);
    if (!Arg)
      return nullptr;
    std::vector<ExprPtr> Args;
    Args.push_back(std::move(Arg));
    return makeCall(Call.callee(), std::move(Args));
  }
  }
  return nullptr;
}

/// Scans for any float-suffixed literal to infer the element type.
static bool containsFloatSuffix(const Expr &E) {
  switch (E.kind()) {
  case Expr::Kind::Number:
    return ast_cast<NumberLit>(E).isFloatSuffixed();
  case Expr::Kind::Unary:
    return containsFloatSuffix(ast_cast<UnaryOpExpr>(E).operand());
  case Expr::Kind::Binary: {
    const auto &B = ast_cast<BinaryOpExpr>(E);
    return containsFloatSuffix(B.lhs()) || containsFloatSuffix(B.rhs());
  }
  case Expr::Kind::Call: {
    for (const ExprNode &A : ast_cast<CallOpExpr>(E).args())
      if (containsFloatSuffix(*A))
        return true;
    return false;
  }
  case Expr::Kind::ArrayRef: {
    for (const ExprNode &Index : ast_cast<ArrayRefExpr>(E).indices())
      if (containsFloatSuffix(*Index))
        return true;
    return false;
  }
  case Expr::Kind::Ident:
    return false;
  }
  return false;
}

std::optional<ExtractionResult>
StencilExtractor::extract(const Stmt &Root, std::string Name,
                          std::optional<ScalarType> TypeOverride,
                          std::map<std::string, double> Coefficients) {
  // Peel the loop nest: time loop, then one loop per spatial dimension
  // (rule 2: one loop per dimension), then the update statement.
  std::vector<const ForStmt *> Loops;
  const Stmt *Cursor = &Root;
  while (true) {
    Cursor = unwrapSingleton(Cursor, Diags);
    if (!Cursor)
      return std::nullopt;
    const auto *Loop = ast_dyn_cast<ForStmt>(Cursor);
    if (!Loop)
      break;
    Loops.push_back(Loop);
    Cursor = &Loop->body();
  }

  if (Loops.size() < 2 || Loops.size() > 4) {
    Diags.error(Root.loc(),
                "expected a time loop plus 1-3 spatial loops, found a nest "
                "of depth " +
                    std::to_string(Loops.size()));
    return std::nullopt;
  }
  const auto *Assign = ast_dyn_cast<AssignStmt>(Cursor);
  if (!Assign) {
    Diags.error(Cursor->loc(),
                "innermost loop body must be a single assignment "
                "(Section 4.3.3 rule 1)");
    return std::nullopt;
  }

  NestContext Ctx;
  Ctx.Diags = &Diags;
  Ctx.TimeVar = Loops.front()->loopVar();
  for (std::size_t I = 1; I < Loops.size(); ++I)
    Ctx.SpatialVars.push_back(Loops[I]->loopVar());

  // The time loop must start at zero and use an exclusive bound.
  const auto *TimeLower =
      ast_dyn_cast<NumberLit>(&Loops.front()->lowerBound());
  if (!TimeLower || TimeLower->value() != 0.0 ||
      Loops.front()->isInclusiveUpper()) {
    Diags.error(Loops.front()->loc(),
                "time loop must have the form 'for (t = 0; t < I_T; t++)'");
    return std::nullopt;
  }

  // Validate the store: A[(t+1)%2][i][j...] with bare loop variables.
  const auto &LHS = ast_cast<ArrayRefExpr>(Assign->lhs());
  Ctx.ArrayName = LHS.base();
  if (LHS.indices().size() != Ctx.SpatialVars.size() + 1) {
    Diags.error(LHS.loc(), "store arity differs from the loop nest depth");
    return std::nullopt;
  }
  std::optional<int> StoreShift =
      matchTimeBufferIndex(*LHS.indices()[0], Ctx.TimeVar);
  if (!StoreShift || *StoreShift != 1) {
    Diags.error(LHS.loc(),
                "store must address the '(t+1) % 2' buffer (double-buffered "
                "input required, Section 4.3)");
    return std::nullopt;
  }
  for (std::size_t D = 0; D < Ctx.SpatialVars.size(); ++D) {
    std::optional<int> Offset =
        matchSpatialIndex(*LHS.indices()[D + 1], Ctx.SpatialVars[D]);
    if (!Offset || *Offset != 0) {
      Diags.error(LHS.loc(),
                  "store subscript " + std::to_string(D + 1) +
                      " must be exactly the loop variable '" +
                      Ctx.SpatialVars[D] + "' of the matching loop");
      return std::nullopt;
    }
  }

  ExprPtr Update = lowerExpr(Assign->rhs(), Ctx);
  if (!Update)
    return std::nullopt;

  ScalarType ElemType =
      TypeOverride.value_or(containsFloatSuffix(Assign->rhs())
                                ? ScalarType::Float
                                : ScalarType::Double);

  // Capture source naming for the code generator.
  StencilSourceInfo Source;
  Source.TimeVar = Ctx.TimeVar;
  Source.SpatialVars = Ctx.SpatialVars;
  Source.TimeBound = Loops.front()->upperBound().toString();
  for (std::size_t I = 1; I < Loops.size(); ++I) {
    Source.SpatialBounds.push_back(Loops[I]->upperBound().toString());
    const auto *Lower = ast_dyn_cast<NumberLit>(&Loops[I]->lowerBound());
    Source.LowerBounds.push_back(
        Lower && Lower->isIntegerLiteral()
            ? static_cast<long long>(Lower->value())
            : 0);
  }

  ExtractionResult Result;
  Result.Program = std::make_unique<StencilProgram>(
      std::move(Name), static_cast<int>(Ctx.SpatialVars.size()), ElemType,
      Ctx.ArrayName, std::move(Update), std::move(Coefficients));
  Result.Source = std::move(Source);

  // Lowering-time tape verification: the freshly compiled ExprPlan is the
  // emulator's correctness oracle, so a tape the abstract interpreter
  // refutes must fail extraction with structured findings instead of
  // miscomputing later. Warn/Info findings ride along as diagnostics.
  AnalysisReport TapeReport = verifyTape(
      TapeFacts::of(Result.Program->plan(), *Result.Program));
  if (!TapeReport.Findings.empty())
    TapeReport.render(Diags);
  if (!TapeReport.proven())
    return std::nullopt;
  return Result;
}

std::optional<ExtractionResult> StencilExtractor::extractFromSource(
    const std::string &Source, std::string Name,
    std::optional<ScalarType> TypeOverride,
    std::map<std::string, double> Coefficients) {
  Parser P(Source, Diags);
  StmtNode Root = P.parseProgram();
  if (!Root || Diags.hasErrors())
    return std::nullopt;
  return extract(*Root, std::move(Name), TypeOverride,
                 std::move(Coefficients));
}

} // namespace an5d
