//===- StencilExtractor.h - Stencil detection over the AST ------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detects the stencil pattern in a parsed loop nest and lowers it to
/// StencilProgram IR. Implements the detection rules of Section 4.3.3 of
/// the paper:
///
///  1. The statement describing array accesses is singleton and has only
///     one store access; read addresses are static.
///  2. All dimensions (time and space) are iterated by one loop each, with
///     multi-dimensional array addressing.
///  3. Spatial iterations are data independent: the time loop is outermost,
///     updates write the (t+1)%2 buffer and read only the t%2 buffer, and
///     the loop directly after the time loop is the streaming dimension.
///
/// Violations produce diagnostics instead of silently accepting the input.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_FRONTEND_STENCILEXTRACTOR_H
#define AN5D_FRONTEND_STENCILEXTRACTOR_H

#include "ast/Ast.h"
#include "ir/StencilProgram.h"
#include "support/Diagnostic.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace an5d {

/// Source-level naming captured during extraction; the code generator uses
/// these to keep the generated CUDA readable and consistent with the input.
struct StencilSourceInfo {
  std::string TimeVar;                    ///< e.g. "t".
  std::vector<std::string> SpatialVars;   ///< Outermost (streaming) first.
  std::string TimeBound;                  ///< e.g. "I_T".
  std::vector<std::string> SpatialBounds; ///< e.g. {"I_S2", "I_S1"}.
  std::vector<long long> LowerBounds;     ///< Spatial loop lower bounds.
};

/// The product of a successful extraction.
struct ExtractionResult {
  std::unique_ptr<StencilProgram> Program;
  StencilSourceInfo Source;
};

/// Lowers a parsed loop nest into stencil IR, verifying the Section 4.3.3
/// rules along the way.
class StencilExtractor {
public:
  explicit StencilExtractor(DiagnosticEngine &Diags) : Diags(Diags) {}

  /// Extracts a stencil from \p Root (the time for-loop).
  ///
  /// \param Name identifier for the resulting StencilProgram.
  /// \param TypeOverride forces the element type; by default float is
  ///        inferred when any literal carries an f suffix, double otherwise.
  /// \param Coefficients values for free identifiers used as coefficients.
  /// \returns std::nullopt (with diagnostics) when the input is not an
  ///          acceptable stencil.
  std::optional<ExtractionResult>
  extract(const ast::Stmt &Root, std::string Name,
          std::optional<ScalarType> TypeOverride = std::nullopt,
          std::map<std::string, double> Coefficients = {});

  /// Convenience entry: parse \p Source then extract.
  std::optional<ExtractionResult>
  extractFromSource(const std::string &Source, std::string Name,
                    std::optional<ScalarType> TypeOverride = std::nullopt,
                    std::map<std::string, double> Coefficients = {});

private:
  DiagnosticEngine &Diags;
};

} // namespace an5d

#endif // AN5D_FRONTEND_STENCILEXTRACTOR_H
