//===- Benchmarks.cpp - Table 3 benchmark stencils --------------------------===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stencils/Benchmarks.h"

#include "support/Support.h"

#include <cassert>

namespace an5d {

/// Deterministic per-tap coefficient: small variation around 1/NumTaps so
/// that the update is (approximately) averaging and iterates stay bounded.
static double tapCoefficient(int TapIndex, int NumTaps) {
  double Base = 1.0 / static_cast<double>(NumTaps);
  double Wiggle = 0.01 * static_cast<double>(TapIndex % 7) -
                  0.03; // in [-0.03, +0.03]
  return Base * (1.0 + Wiggle);
}

/// Builds sum_{taps} c_k * A[tap]; \p Taps supplies the offsets.
static ExprPtr buildWeightedSum(const std::vector<std::vector<int>> &Taps,
                                std::map<std::string, double> &Coefficients) {
  ExprPtr Sum;
  int NumTaps = static_cast<int>(Taps.size());
  for (int K = 0; K < NumTaps; ++K) {
    std::string CoefName = "c" + std::to_string(K + 1);
    Coefficients[CoefName] = tapCoefficient(K, NumTaps);
    ExprPtr Term =
        makeMul(makeCoefficient(CoefName), makeGridRead("A", Taps[K]));
    Sum = Sum ? makeAdd(std::move(Sum), std::move(Term)) : std::move(Term);
  }
  return Sum;
}

/// Offsets of the star pattern: center plus axis taps out to \p Radius.
static std::vector<std::vector<int>> starTaps(int NumDims, int Radius) {
  std::vector<std::vector<int>> Taps;
  Taps.push_back(std::vector<int>(NumDims, 0));
  for (int D = 0; D < NumDims; ++D)
    for (int R = 1; R <= Radius; ++R)
      for (int Sign : {-1, 1}) {
        std::vector<int> Tap(NumDims, 0);
        Tap[D] = Sign * R;
        Taps.push_back(std::move(Tap));
      }
  return Taps;
}

/// Offsets of the full (2R+1)^N box in row-major order.
static std::vector<std::vector<int>> boxTaps(int NumDims, int Radius) {
  std::vector<std::vector<int>> Taps;
  std::vector<int> Tap(NumDims, -Radius);
  while (true) {
    Taps.push_back(Tap);
    int D = NumDims - 1;
    while (D >= 0) {
      if (++Tap[D] <= Radius)
        break;
      Tap[D] = -Radius;
      --D;
    }
    if (D < 0)
      break;
  }
  return Taps;
}

std::unique_ptr<StencilProgram> makeStarStencil(int NumDims, int Radius,
                                                ScalarType Type) {
  assert(Radius >= 1 && "star stencil requires a positive radius");
  std::map<std::string, double> Coefficients;
  ExprPtr Update = buildWeightedSum(starTaps(NumDims, Radius), Coefficients);
  std::string Name = "star" + std::to_string(NumDims) + "d" +
                     std::to_string(Radius) + "r";
  return std::make_unique<StencilProgram>(Name, NumDims, Type, "A",
                                          std::move(Update),
                                          std::move(Coefficients));
}

std::unique_ptr<StencilProgram> makeBoxStencil(int NumDims, int Radius,
                                               ScalarType Type) {
  assert(Radius >= 1 && "box stencil requires a positive radius");
  std::map<std::string, double> Coefficients;
  ExprPtr Update = buildWeightedSum(boxTaps(NumDims, Radius), Coefficients);
  std::string Name = "box" + std::to_string(NumDims) + "d" +
                     std::to_string(Radius) + "r";
  return std::make_unique<StencilProgram>(Name, NumDims, Type, "A",
                                          std::move(Update),
                                          std::move(Coefficients));
}

std::unique_ptr<StencilProgram> makeJacobi2d5pt(ScalarType Type) {
  // Fig. 4: (5.1*A[i-1][j] + 12.1*A[i][j-1] + 15.0*A[i][j]
  //          + 12.2*A[i][j+1] + 5.2*A[i+1][j]) / 118
  ExprPtr Sum = makeMul(makeNumber(5.1), makeGridRead("A", {-1, 0}));
  Sum = makeAdd(std::move(Sum),
                makeMul(makeNumber(12.1), makeGridRead("A", {0, -1})));
  Sum = makeAdd(std::move(Sum),
                makeMul(makeNumber(15.0), makeGridRead("A", {0, 0})));
  Sum = makeAdd(std::move(Sum),
                makeMul(makeNumber(12.2), makeGridRead("A", {0, 1})));
  Sum = makeAdd(std::move(Sum),
                makeMul(makeNumber(5.2), makeGridRead("A", {1, 0})));
  ExprPtr Update = makeDiv(std::move(Sum), makeNumber(118.0));
  return std::make_unique<StencilProgram>("j2d5pt", 2, Type, "A",
                                          std::move(Update));
}

std::unique_ptr<StencilProgram> makeJacobi2d9pt(ScalarType Type) {
  std::map<std::string, double> Coefficients;
  ExprPtr Sum = buildWeightedSum(starTaps(2, 2), Coefficients);
  Coefficients["c0"] = 1.04;
  ExprPtr Update = makeDiv(std::move(Sum), makeCoefficient("c0"));
  return std::make_unique<StencilProgram>("j2d9pt", 2, Type, "A",
                                          std::move(Update),
                                          std::move(Coefficients));
}

std::unique_ptr<StencilProgram> makeJacobi2d9ptGol(ScalarType Type) {
  std::map<std::string, double> Coefficients;
  ExprPtr Sum = buildWeightedSum(boxTaps(2, 1), Coefficients);
  Coefficients["c0"] = 1.04;
  ExprPtr Update = makeDiv(std::move(Sum), makeCoefficient("c0"));
  return std::make_unique<StencilProgram>("j2d9pt-gol", 2, Type, "A",
                                          std::move(Update),
                                          std::move(Coefficients));
}

std::unique_ptr<StencilProgram> makeGradient2d(ScalarType Type) {
  // c * f + 1.0 / sqrt(c0 + sum over 4 axis neighbors of
  //                    (f - f_n) * (f - f_n))
  auto Center = [] { return makeGridRead("A", {0, 0}); };
  auto SquaredDiff = [&](std::vector<int> Offsets) {
    ExprPtr D1 = makeSub(Center(), makeGridRead("A", Offsets));
    ExprPtr D2 = makeSub(Center(), makeGridRead("A", Offsets));
    return makeMul(std::move(D1), std::move(D2));
  };
  ExprPtr Inner = makeCoefficient("c0");
  Inner = makeAdd(std::move(Inner), SquaredDiff({-1, 0}));
  Inner = makeAdd(std::move(Inner), SquaredDiff({1, 0}));
  Inner = makeAdd(std::move(Inner), SquaredDiff({0, -1}));
  Inner = makeAdd(std::move(Inner), SquaredDiff({0, 1}));
  ExprPtr Rsqrt =
      makeDiv(makeNumber(1.0),
              makeCall("sqrt", [&] {
                std::vector<ExprPtr> Args;
                Args.push_back(std::move(Inner));
                return Args;
              }()));
  ExprPtr Update = makeAdd(makeMul(makeCoefficient("c1"), Center()),
                           std::move(Rsqrt));
  std::map<std::string, double> Coefficients = {{"c0", 4.0}, {"c1", 0.72}};
  return std::make_unique<StencilProgram>("gradient2d", 2, Type, "A",
                                          std::move(Update),
                                          std::move(Coefficients));
}

std::unique_ptr<StencilProgram> makeJacobi3d27pt(ScalarType Type) {
  std::map<std::string, double> Coefficients;
  ExprPtr Sum = buildWeightedSum(boxTaps(3, 1), Coefficients);
  Coefficients["c0"] = 1.04;
  ExprPtr Update = makeDiv(std::move(Sum), makeCoefficient("c0"));
  return std::make_unique<StencilProgram>("j3d27pt", 3, Type, "A",
                                          std::move(Update),
                                          std::move(Coefficients));
}

std::unique_ptr<StencilProgram> makeJacobi1d3pt(ScalarType Type) {
  // PolyBench jacobi-1d shape: (A[i-1] + 2*A[i] + A[i+1]) / 4.
  ExprPtr Sum = makeGridRead("A", {-1});
  Sum = makeAdd(std::move(Sum),
                makeMul(makeNumber(2.0), makeGridRead("A", {0})));
  Sum = makeAdd(std::move(Sum), makeGridRead("A", {1}));
  ExprPtr Update = makeDiv(std::move(Sum), makeNumber(4.0));
  return std::make_unique<StencilProgram>("j1d3pt", 1, Type, "A",
                                          std::move(Update));
}

std::vector<std::string> benchmarkStencilNames() {
  return {"star2d1r", "star2d2r", "star2d3r", "star2d4r",
          "box2d1r",  "box2d2r",  "box2d3r",  "box2d4r",
          "j2d5pt",   "j2d9pt",   "j2d9pt-gol", "gradient2d",
          "star3d1r", "star3d2r", "star3d3r", "star3d4r",
          "box3d1r",  "box3d2r",  "box3d3r",  "box3d4r",
          "j3d27pt"};
}

std::vector<std::string> extraStencilNames() {
  return {"star1d1r", "star1d2r", "star1d3r", "star1d4r",
          "box1d1r",  "box1d2r",  "box1d3r",  "box1d4r",
          "j1d3pt"};
}

std::unique_ptr<StencilProgram> makeBenchmarkStencil(const std::string &Name,
                                                     ScalarType Type) {
  auto ParseOrderSuffix = [&](const std::string &Prefix) -> int {
    // Matches e.g. "star2d3r" against Prefix "star2d"; returns the order.
    if (Name.size() == Prefix.size() + 2 &&
        Name.compare(0, Prefix.size(), Prefix) == 0 && Name.back() == 'r') {
      char Digit = Name[Prefix.size()];
      if (Digit >= '1' && Digit <= '4')
        return Digit - '0';
    }
    return 0;
  };

  if (int R = ParseOrderSuffix("star1d"))
    return makeStarStencil(1, R, Type);
  if (int R = ParseOrderSuffix("box1d"))
    return makeBoxStencil(1, R, Type);
  if (int R = ParseOrderSuffix("star2d"))
    return makeStarStencil(2, R, Type);
  if (int R = ParseOrderSuffix("box2d"))
    return makeBoxStencil(2, R, Type);
  if (int R = ParseOrderSuffix("star3d"))
    return makeStarStencil(3, R, Type);
  if (int R = ParseOrderSuffix("box3d"))
    return makeBoxStencil(3, R, Type);
  if (Name == "j2d5pt")
    return makeJacobi2d5pt(Type);
  if (Name == "j2d9pt")
    return makeJacobi2d9pt(Type);
  if (Name == "j2d9pt-gol")
    return makeJacobi2d9ptGol(Type);
  if (Name == "gradient2d")
    return makeGradient2d(Type);
  if (Name == "j3d27pt")
    return makeJacobi3d27pt(Type);
  if (Name == "j1d3pt")
    return makeJacobi1d3pt(Type);
  return nullptr;
}

std::string j2d5ptSource() {
  return "for (t = 0; t < I_T; t++)\n"
         "  for (i = 1; i <= I_S2; i++)\n"
         "    for (j = 1; j <= I_S1; j++)\n"
         "      A[(t+1)%2][i][j] = (5.1f * A[t%2][i-1][j]\n"
         "        + 12.1f * A[t%2][i][j-1] + 15.0f * A[t%2][i][j]\n"
         "        + 12.2f * A[t%2][i][j+1] + 5.2f * A[t%2][i+1][j]) / 118;\n";
}

std::string j2d9ptSource() {
  return "for (t = 0; t < I_T; t++)\n"
         "  for (i = 2; i <= I_S2; i++)\n"
         "    for (j = 2; j <= I_S1; j++)\n"
         "      A[(t+1)%2][i][j] = (c1 * A[t%2][i-2][j] + c2 * A[t%2][i-1][j]\n"
         "        + c3 * A[t%2][i][j-2] + c4 * A[t%2][i][j-1]\n"
         "        + c5 * A[t%2][i][j] + c6 * A[t%2][i][j+1]\n"
         "        + c7 * A[t%2][i][j+2] + c8 * A[t%2][i+1][j]\n"
         "        + c9 * A[t%2][i+2][j]) / c0;\n";
}

std::string star3d1rSource() {
  return "for (t = 0; t < I_T; t++)\n"
         "  for (i = 1; i <= I_S3; i++)\n"
         "    for (j = 1; j <= I_S2; j++)\n"
         "      for (k = 1; k <= I_S1; k++)\n"
         "        A[(t+1)%2][i][j][k] = 0.125f * A[t%2][i-1][j][k]\n"
         "          + 0.125f * A[t%2][i+1][j][k] + 0.125f * A[t%2][i][j-1][k]\n"
         "          + 0.125f * A[t%2][i][j+1][k] + 0.125f * A[t%2][i][j][k-1]\n"
         "          + 0.125f * A[t%2][i][j][k+1] + 0.25f * A[t%2][i][j][k];\n";
}

} // namespace an5d
