//===- Benchmarks.h - Table 3 benchmark stencils ----------------*- C++ -*-===//
//
// Part of the AN5D reproduction project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic builders for every benchmark in Table 3 of the paper:
/// synthetic star/box stencils of order 1-4 in 2D and 3D, the Jacobi
/// kernels (j2d5pt, j2d9pt, j2d9pt-gol, j3d27pt) and gradient2d.
/// Coefficient values are deterministic and scaled so that repeated
/// application stays numerically tame in tests.
///
//===----------------------------------------------------------------------===//

#ifndef AN5D_STENCILS_BENCHMARKS_H
#define AN5D_STENCILS_BENCHMARKS_H

#include "ir/StencilProgram.h"

#include <memory>
#include <string>
#include <vector>

namespace an5d {

/// Builds the synthetic star stencil star{N}d{R}r of Table 3: center tap
/// plus 2*N*R axis taps, each with its own compile-time coefficient.
std::unique_ptr<StencilProgram> makeStarStencil(int NumDims, int Radius,
                                                ScalarType Type);

/// Builds the synthetic box stencil box{N}d{R}r of Table 3: the full
/// (2R+1)^N cube of taps, each with its own coefficient.
std::unique_ptr<StencilProgram> makeBoxStencil(int NumDims, int Radius,
                                               ScalarType Type);

/// The 2D 5-point Jacobi kernel of Fig. 4 (literal coefficients, /118).
std::unique_ptr<StencilProgram> makeJacobi2d5pt(ScalarType Type);

/// The 2nd-order 2D 9-point star Jacobi kernel.
std::unique_ptr<StencilProgram> makeJacobi2d9pt(ScalarType Type);

/// The 2D 9-point box ("game of life" shaped) Jacobi kernel.
std::unique_ptr<StencilProgram> makeJacobi2d9ptGol(ScalarType Type);

/// The gradient2d kernel: c*f + 1/sqrt(c0 + sum of squared differences).
std::unique_ptr<StencilProgram> makeGradient2d(ScalarType Type);

/// The 3D 27-point box Jacobi kernel.
std::unique_ptr<StencilProgram> makeJacobi3d27pt(ScalarType Type);

/// The 1D 3-point Jacobi kernel (PolyBench jacobi-1d shaped):
/// (A[i-1] + 2*A[i] + A[i+1]) / 4.
std::unique_ptr<StencilProgram> makeJacobi1d3pt(ScalarType Type);

/// All Table 3 benchmark names in the paper's order.
std::vector<std::string> benchmarkStencilNames();

/// 1D stencils beyond Table 3 (the paper evaluates 2D/3D only): the
/// synthetic star{1}d{R}r / box{1}d{R}r orders 1-4 — identical in 1D —
/// plus j1d3pt. These exercise the pure-streaming execution path.
std::vector<std::string> extraStencilNames();

/// Builds the benchmark named \p Name (one of benchmarkStencilNames() or
/// extraStencilNames()). Returns nullptr for unknown names.
std::unique_ptr<StencilProgram> makeBenchmarkStencil(const std::string &Name,
                                                     ScalarType Type);

/// The j2d5pt C source of Fig. 4, usable with the frontend.
std::string j2d5ptSource();

/// A 2nd-order star C source (j2d9pt-like) for frontend tests.
std::string j2d9ptSource();

/// A 3D 7-point star C source for frontend tests.
std::string star3d1rSource();

} // namespace an5d

#endif // AN5D_STENCILS_BENCHMARKS_H
